package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/solver"
	"repro/internal/store"
)

// storeMode maintains a campaign store directory: the default action prints
// an inventory; `compi store compact` drops superseded campaign snapshots,
// `compi store minimize` drops corpus entries whose coverage is subsumed,
// and `compi store reindex` rebuilds the campaign index from the snapshots.
// Cross-campaign queries live in `compi report`.
type storeMode struct {
	fs *flag.FlagSet

	dir     *string
	jsonOut *bool
}

func newStoreMode() *storeMode {
	fs := newFlagSet("store")
	m := &storeMode{fs: fs}
	m.dir = fs.String("dir", "", "campaign store directory (required)")
	m.jsonOut = fs.Bool("json", false, "emit the inventory as JSON")
	return m
}

func (m *storeMode) Name() string { return "store" }
func (m *storeMode) Synopsis() string {
	return "maintain a campaign store: inventory, compact, minimize, reindex"
}
func (m *storeMode) Flags() *flag.FlagSet { return m.fs }

// storeDir resolves the -dir flag (with a bare positional fallback) against
// an existing store directory, or exits.
func storeDir(fs *flag.FlagSet, dir *string, what string) string {
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" {
		fmt.Fprintf(os.Stderr, "%s: -dir is required\n", what)
		os.Exit(2)
	}
	if fi, err := os.Stat(*dir); err != nil || !fi.IsDir() {
		fmt.Fprintf(os.Stderr, "%s: %s is not a store directory\n", what, *dir)
		os.Exit(1)
	}
	return *dir
}

func (m *storeMode) Run(args []string) int {
	if len(args) > 0 {
		switch args[0] {
		case "compact":
			return m.runCompact(args[1:])
		case "minimize":
			return m.runMinimize(args[1:])
		case "reindex":
			return m.runReindex(args[1:])
		}
	}
	m.fs.Parse(args)
	storeDir(m.fs, m.dir, "compi store")
	st, err := store.Open(*m.dir)
	if err != nil {
		return fatalf("compi store: %v", err)
	}
	defer st.Close()

	type campaignInfo struct {
		Name    string `json:"name"`
		Program string `json:"program"`
		Iters   int    `json:"iters"`
		Covered int    `json:"covered"`
		Errors  int    `json:"errors"`
	}
	type batchInfo struct {
		ID     string         `json:"id"`
		Counts map[string]int `json:"counts"` // status → entries
	}
	type inventory struct {
		Dir         string         `json:"dir"`
		Version     int            `json:"version"`
		Campaigns   []campaignInfo `json:"campaigns"`
		Batches     []batchInfo    `json:"batches"`
		Setups      int            `json:"setups"`
		SolverUnsat int            `json:"solverUnsat"`
		SolverErr   string         `json:"solverErr,omitempty"`
	}
	inv := inventory{Dir: st.Dir(), Version: store.Version}

	names, _ := st.Campaigns()
	for _, n := range names {
		ci := campaignInfo{Name: n}
		if snap, err := st.LoadCampaign(n); err == nil {
			ci.Program = snap.Program
			ci.Iters = snap.Iters
			ci.Covered = len(snap.Covered)
			ci.Errors = len(snap.Errors)
		}
		inv.Campaigns = append(inv.Campaigns, ci)
	}
	ids, _ := st.Batches()
	for _, id := range ids {
		bi := batchInfo{ID: id, Counts: map[string]int{}}
		if man, err := st.LoadBatch(id); err == nil && man != nil {
			for _, e := range man.Entries {
				bi.Counts[e.Status]++
			}
		}
		inv.Batches = append(inv.Batches, bi)
	}
	if setups, err := st.Setups(); err == nil {
		inv.Setups = len(setups)
	}
	n, err := st.LoadSolverCacheInto(solver.NewService(solver.ServiceConfig{}))
	inv.SolverUnsat = n
	if err != nil {
		inv.SolverErr = err.Error()
	}

	if *m.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(inv)
		return 0
	}
	fmt.Printf("store %s (schema v%d)\n", inv.Dir, inv.Version)
	fmt.Printf("campaigns %d\n", len(inv.Campaigns))
	for _, c := range inv.Campaigns {
		fmt.Printf("  %-40s %-10s iters=%-5d covered=%-5d errors=%d\n",
			c.Name, c.Program, c.Iters, c.Covered, c.Errors)
	}
	fmt.Printf("batches %d\n", len(inv.Batches))
	for _, b := range inv.Batches {
		fmt.Printf("  %-24s", b.ID)
		for _, status := range []string{"pending", "running", "done", "reused", "error"} {
			if b.Counts[status] > 0 {
				fmt.Printf(" %s=%d", status, b.Counts[status])
			}
		}
		fmt.Println()
	}
	fmt.Printf("setup index %d entries\n", inv.Setups)
	if inv.SolverErr != "" {
		fmt.Printf("solver cache unusable: %s\n", inv.SolverErr)
	} else {
		fmt.Printf("solver cache %d proven-unsat entries\n", inv.SolverUnsat)
	}
	return 0
}

// runCompact implements `compi store compact`: drop campaign snapshots
// superseded by further-progressed runs of the same setup, redirecting batch
// manifests to the surviving files. Resume behaviour is unchanged — the
// setup index, which the resume path reads, always references the file kept.
func (m *storeMode) runCompact(args []string) int {
	fs := newFlagSet("store compact")
	dir := fs.String("dir", "", "campaign store directory (required)")
	fs.Parse(args)
	storeDir(fs, dir, "compi store compact")
	st, err := store.Open(*dir)
	if err != nil {
		return fatalf("compi store compact: %v", err)
	}
	defer st.Close()
	stats, err := st.Compact()
	if err != nil {
		return fatalf("compi store compact: %v", err)
	}
	fmt.Printf("compacted %s: removed %d superseded snapshots, kept %d, redirected %d batch entries\n",
		st.Dir(), len(stats.Removed), stats.Kept, stats.Rewritten)
	for _, name := range stats.Removed {
		fmt.Printf("  removed %s\n", name)
	}
	return 0
}

// runMinimize implements `compi store minimize`: drop corpus entries whose
// branch sets are subsumed by the retained ones (greedy set cover over the
// snapshots' per-setup coverage). Resume behaviour is unchanged — the engine
// never reads the corpus back into the exploration.
func (m *storeMode) runMinimize(args []string) int {
	fs := newFlagSet("store minimize")
	dir := fs.String("dir", "", "campaign store directory (required)")
	fs.Parse(args)
	storeDir(fs, dir, "compi store minimize")
	st, err := store.Open(*dir)
	if err != nil {
		return fatalf("compi store minimize: %v", err)
	}
	defer st.Close()
	stats, err := st.Minimize()
	if err != nil {
		return fatalf("compi store minimize: %v", err)
	}
	fmt.Printf("minimized %s: dropped %d subsumed corpus entries, kept %d, rewrote %d campaigns\n",
		st.Dir(), stats.Dropped, stats.Kept, stats.Campaigns)
	return 0
}

// runReindex implements `compi store reindex`: rebuild index.json from the
// setup index and the campaign snapshots — the recovery path for a corrupted
// index and the upgrade path for stores written before the index existed.
func (m *storeMode) runReindex(args []string) int {
	fs := newFlagSet("store reindex")
	dir := fs.String("dir", "", "campaign store directory (required)")
	fs.Parse(args)
	storeDir(fs, dir, "compi store reindex")
	st, err := store.Open(*dir)
	if err != nil {
		return fatalf("compi store reindex: %v", err)
	}
	defer st.Close()
	n, err := st.Reindex()
	if err != nil {
		return fatalf("compi store reindex: %v", err)
	}
	fmt.Printf("reindexed %s: %d campaign entries\n", st.Dir(), n)
	return 0
}
