package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/target"
)

// targetsMode prints the static declaration manifests of the registered
// programs, without running anything.
type targetsMode struct {
	fs *flag.FlagSet

	jsonOut *bool
	name    *string
}

func newTargetsMode() *targetsMode {
	fs := newFlagSet("targets")
	m := &targetsMode{fs: fs}
	m.jsonOut = fs.Bool("json", false, "emit the full JSON manifest array")
	m.name = fs.String("target", "", "restrict the listing to one program")
	return m
}

func (m *targetsMode) Name() string { return "targets" }
func (m *targetsMode) Synopsis() string {
	return "print the registered programs' static declaration manifests"
}
func (m *targetsMode) Flags() *flag.FlagSet { return m.fs }

func (m *targetsMode) Run(args []string) int {
	m.fs.Parse(args)

	progs := target.Programs()
	if *m.name != "" {
		p, ok := target.Lookup(*m.name)
		if !ok {
			return usagef("unknown target %q; available: %s",
				*m.name, strings.Join(target.Names(), ", "))
		}
		progs = []*target.Program{p}
	}

	if *m.jsonOut {
		ms := make([]target.Manifest, len(progs))
		for i, p := range progs {
			ms[i] = p.Manifest()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ms); err != nil {
			return fatalf("encoding manifests: %v", err)
		}
		return 0
	}

	for _, p := range progs {
		fmt.Printf("%-10s sloc=%-5d branches=%-4d functions=%-2d callsites=%-2d inputs=%d\n",
			p.Name, p.SLOC, p.TotalBranches(), len(p.Functions()), len(p.Calls()), len(p.Inputs()))
		for _, in := range p.Inputs() {
			if in.HasCap {
				fmt.Printf("    input %-12s cap=%d\n", in.Name, in.Cap)
			} else {
				fmt.Printf("    input %s\n", in.Name)
			}
		}
	}
	return 0
}
