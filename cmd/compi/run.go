package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/binstat"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/target"
)

// runMode is the default mode: one in-process campaign against a registered
// target, plus the -replay and -state conveniences.
type runMode struct {
	fs     *flag.FlagSet
	binder *spec.FlagBinder

	verbose *bool
	list    *bool
	replay  *string
	state   *string
	errlog  *string
}

func newRunMode() *runMode {
	fs := newFlagSet("run")
	m := &runMode{
		fs: fs,
		binder: spec.Bind(fs, false, map[string]string{
			"shard": "one engine runs one campaign; use `compi sched -shard` or `compi drive -shard`",
		}),
	}
	m.verbose = fs.Bool("v", false, "per-iteration trace")
	m.list = fs.Bool("list", false, "list targets")
	m.replay = fs.String("replay", "", `replay one input set, e.g. "x=100,y=50" (skips the campaign)`)
	m.state = fs.String("state", "", "campaign state file: loaded if present, saved after the run")
	m.errlog = fs.String("errlog", "", "append error-inducing inputs as JSON lines to this file")
	return m
}

func (m *runMode) Name() string     { return "run" }
func (m *runMode) Synopsis() string { return "run one testing campaign in-process (the default mode)" }
func (m *runMode) Flags() *flag.FlagSet        { return m.fs }
func (m *runMode) Excluded() map[string]string { return m.binder.Excluded() }

func (m *runMode) Run(args []string) int {
	m.fs.Parse(args)
	if *m.list {
		fmt.Println(strings.Join(target.Names(), "\n"))
		return 0
	}
	c, err := m.binder.Campaign(fixParams())
	if err != nil {
		return usagef("%v", err)
	}
	prog, _ := target.Lookup(c.Target) // Validate pinned the registry hit

	if *m.replay != "" {
		rec := core.ErrorRecord{NProcs: c.InitialProcs, Focus: 0,
			Inputs: map[string]int64{}, Params: c.Params}
		for _, kv := range strings.Split(*m.replay, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return usagef("bad -replay entry %q", kv)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return usagef("bad -replay value %q: %v", kv, err)
			}
			rec.Inputs[k] = n
		}
		// Round-trip through the canonical replay campaign, the same shape
		// `compi replay -spec` consumes.
		return replayCampaign(prog, spec.FromErrorRecord(c.Target, rec), c.RunTimeout)
	}

	cfg, err := sched.Spec{Campaign: c}.Config()
	if err != nil {
		return usagef("%v", err)
	}
	cfg.Program = prog
	if m.binder.Profile() {
		cfg.Profiler = binstat.New()
	}
	if *m.errlog != "" {
		f, err := os.OpenFile(*m.errlog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fatalf("opening %s: %v", *m.errlog, err)
		}
		defer f.Close()
		cfg.ErrorLog = f
	}
	if *m.verbose {
		cfg.Trace = iterTrace()
	}

	eng := core.NewEngine(cfg)
	if *m.state != "" {
		if f, err := os.Open(*m.state); err == nil {
			snap, err := core.LoadSnapshot(f)
			f.Close()
			if err != nil {
				return fatalf("loading %s: %v", *m.state, err)
			}
			// Restore validates the snapshot against the program (schema
			// version, branch bits, input names) and says what is wrong.
			if err := eng.Restore(snap); err != nil {
				return fatalf("loading %s: %v", *m.state, err)
			}
			fmt.Printf("resumed campaign: %d iterations done, %d branches already covered\n",
				snap.Iters, eng.Coverage().Count())
		}
	}

	res := eng.Run()

	if *m.state != "" {
		if err := store.WriteAtomic(*m.state, eng.Snapshot().Save); err != nil {
			return fatalf("saving %s: %v", *m.state, err)
		}
	}

	printResult(prog, res)
	return 0
}
