package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/fleet"
	"repro/internal/spec"
)

// serveMode is the fleet coordinator. It owns the same campaign grid
// `compi sched` would run (and, with -state-dir, the same store), but leases
// shards to `compi work` processes over the dispatch protocol instead of
// running engines itself, prints the merged summary when the batch resolves,
// and exits.
type serveMode struct {
	fs     *flag.FlagSet
	binder *spec.FlagBinder

	listen    *string
	status    *string
	addrFile  *string
	stateDir  *string
	batchID   *string
	ttl       *time.Duration
	snapEvery *int
	verbose   *bool
}

func newServeMode() *serveMode {
	fs := newFlagSet("serve")
	m := &serveMode{fs: fs, binder: spec.Bind(fs, true, nil)}
	m.listen = fs.String("listen", "127.0.0.1:0", "dispatch address workers connect to")
	m.status = fs.String("status", "", "serve plain-text fleet status on this address (empty = off)")
	m.addrFile = fs.String("addr-file", "", "write the dispatch address to this file once listening (worker discovery)")
	m.stateDir = fs.String("state-dir", "", "campaign store directory: checkpoint shards, resume interrupted batches, reuse setups explored by prior batches")
	m.batchID = fs.String("batch", "", "batch manifest name in the store (default: derived from the spec list)")
	m.ttl = fs.Duration("ttl", 10*time.Second, "lease time-to-live: a lease not renewed within this window is reclaimed and re-leased")
	m.snapEvery = fs.Int("snapshot-every", 8, "iterations between streamed progress snapshots (resume granularity after a worker death)")
	m.verbose = fs.Bool("v", false, "log fleet events to stderr")
	return m
}

func (m *serveMode) Name() string { return "serve" }
func (m *serveMode) Synopsis() string {
	return "coordinate a worker fleet: lease campaign shards over the dispatch protocol"
}
func (m *serveMode) Flags() *flag.FlagSet        { return m.fs }
func (m *serveMode) Excluded() map[string]string { return m.binder.Excluded() }

func (m *serveMode) Run(args []string) int {
	m.fs.Parse(args)
	cs, err := m.binder.Campaigns(fixParams())
	if err != nil {
		return usagef("%v", err)
	}
	specs := toSpecs(cs)

	opt := fleet.Options{BatchID: *m.batchID, TTL: *m.ttl,
		SnapshotEvery: *m.snapEvery, Profile: m.binder.Profile()}
	if *m.stateDir != "" {
		st := openStateDir(*m.stateDir)
		defer st.Close()
		opt.Store = st
	}
	if *m.verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	ln, err := net.Listen("tcp", *m.listen)
	if err != nil {
		return fatalf("compi serve: %v", err)
	}
	c := fleet.NewCoordinator(specs, opt)
	fmt.Fprintf(os.Stderr, "compi serve: dispatching %d shards on %s\n", len(specs), ln.Addr())
	if *m.addrFile != "" {
		// Write-then-rename so a polling worker launcher never reads a
		// half-written address.
		tmp := *m.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err == nil {
			err = os.Rename(tmp, *m.addrFile)
		}
		if err != nil {
			return fatalf("compi serve: %v", err)
		}
	}
	if *m.status != "" {
		sln, err := net.Listen("tcp", *m.status)
		if err != nil {
			return fatalf("compi serve: status: %v", err)
		}
		fmt.Fprintf(os.Stderr, "compi serve: status on %s\n", sln.Addr())
		go c.ServeStatus(sln)
	}
	go c.Serve(ln)
	c.Wait().WriteSummary(os.Stdout)
	return 0
}
