// Command compi-target exposes the built-in target programs over the COMPI
// pipe protocol: it is the reference out-of-process target, the separate
// binary an engine drives with `compi drive -bin compi-target` or a
// sched.Spec with External set.
//
// The protocol runs over stdin/stdout (stderr stays free for diagnostics):
// on start the binary announces the selected program's manifest in a
// handshake frame, then executes one in-process MPI launch per
// assign-inputs frame, streaming each rank's branch events and errors back.
// It exits 0 when the driver closes its stdin, non-zero on a protocol
// violation.
//
// Usage:
//
//	compi-target                    # serve the stencil target (default)
//	compi-target -target susy-hmc   # serve another registered target
//	compi-target -list              # list the registered targets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/proto"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/mworder"
	_ "repro/internal/targets/relay"
	_ "repro/internal/targets/skeleton"
	_ "repro/internal/targets/stencil"
	_ "repro/internal/targets/susy"
)

func main() {
	var (
		name = flag.String("target", "stencil", "registered program to serve")
		list = flag.Bool("list", false, "list the registered targets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(target.Names(), "\n"))
		return
	}
	prog, ok := target.Lookup(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "compi-target: unknown target %q; available: %s\n",
			*name, strings.Join(target.Names(), ", "))
		os.Exit(2)
	}
	if err := proto.Serve(os.Stdin, os.Stdout, prog); err != nil {
		fmt.Fprintf(os.Stderr, "compi-target: %v\n", err)
		os.Exit(1)
	}
}
