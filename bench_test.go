// Package repro's top-level benchmarks regenerate each table and figure of
// the paper's evaluation at reduced scale (one benchmark per table/figure;
// run the cmd/compi-experiments binary for the full-scale versions).
//
//	go test -bench=. -benchmem
package repro

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/susy"
)

// benchScale keeps each regeneration to a benchmark-friendly size.
var benchScale = experiments.Scale{
	Reps: 1, Iters: 60, Fig4Iters: 60, FixedRuns: 2,
	Fig6MaxN: 300, RunTimeout: 30 * time.Second, Budget: 5 * time.Second,
}

func benchTables(b *testing.B, run func(s experiments.Scale) []*experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, t := range run(benchScale) {
			t.Fprint(io.Discard)
		}
	}
}

// BenchmarkTable3Complexity regenerates Table III (program complexity).
func BenchmarkTable3Complexity(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.TableIII(s)}
	})
}

// BenchmarkFig4SearchStrategies regenerates Figure 4 (HPL coverage under the
// four search strategies).
func BenchmarkFig4SearchStrategies(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Fig4(s)}
	})
}

// BenchmarkFig6MatrixSize regenerates Figure 6 (HPL cost and coverage vs. N).
func BenchmarkFig6MatrixSize(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Fig6(s)}
	})
}

// BenchmarkBugHunt regenerates §VI-A (the four SUSY-HMC bugs).
func BenchmarkBugHunt(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Bugs(s)}
	})
}

// BenchmarkFig8InputCapping regenerates Figure 8 (caps vs. time/coverage).
func BenchmarkFig8InputCapping(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Fig8(s)}
	})
}

// BenchmarkTable4TwoWay regenerates Table IV (one-way vs. two-way
// instrumentation).
func BenchmarkTable4TwoWay(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.TableIV(s)}
	})
}

// BenchmarkTable5Reduction regenerates Table V and Figure 9 (constraint set
// reduction and set-size distributions; the two share campaigns).
func BenchmarkTable5Reduction(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		t5, f9 := experiments.TableVFig9(s)
		return []*experiments.Table{t5, f9}
	})
}

// BenchmarkFig9SetSizes is an alias target for Figure 9 (same campaigns as
// Table V).
func BenchmarkFig9SetSizes(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		t5, f9 := experiments.TableVFig9(s)
		return []*experiments.Table{f9, t5}
	})
}

// BenchmarkTable6Framework regenerates Table VI (Fwk vs No_Fwk vs Random).
func BenchmarkTable6Framework(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.TableVI(s)}
	})
}

// BenchmarkCampaignIteration measures the per-iteration cost of the engine
// itself on the skeleton program (launch + solve + setup).
func BenchmarkCampaignIteration(b *testing.B) {
	prog, _ := target.Lookup("skeleton")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.NewEngine(core.Config{
			Program: prog, Iterations: 10, Reduction: true,
			Framework: true, Seed: int64(i),
		}).Run()
	}
}

// BenchmarkSUSYTrajectory measures one fixed-input SUSY-HMC execution (the
// target-program side of the harness).
func BenchmarkSUSYTrajectory(b *testing.B) {
	prog, _ := target.Lookup("susy-hmc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.NewEngine(core.Config{
			Program: prog, Params: susy.FixAll(), Iterations: 3, Reduction: true,
			Framework: true, Seed: 9,
		}).Run()
	}
}

// BenchmarkSchedSpeedup measures the scheduler's parallel speedup on four
// identical skeleton campaigns: the serial case runs them on one worker,
// the parallel case on four. The ratio of the two is the machine's effective
// campaign-level parallelism.
func BenchmarkSchedSpeedup(b *testing.B) {
	specs := func() []sched.Spec {
		var out []sched.Spec
		for _, seed := range []int64{1, 2, 3, 4} {
			out = append(out, sched.Spec{
				Target: "skeleton",
				Seed:   seed,
				Config: core.Config{
					Iterations: 60,
					Reduction:  true,
					Framework:  true,
					RunTimeout: 5 * time.Second,
				},
			})
		}
		return out
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"j4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := sched.Run(specs(), sched.Options{Workers: bc.workers})
				for _, c := range rep.Campaigns {
					if c.Err != nil {
						b.Fatal(c.Err)
					}
				}
			}
		})
	}
}
