// Package repro's top-level benchmarks regenerate each table and figure of
// the paper's evaluation at reduced scale (one benchmark per table/figure;
// run the cmd/compi-experiments binary for the full-scale versions).
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/binstat"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/fleet"
	"repro/internal/mpi"
	"repro/internal/sched"
	"repro/internal/solver"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/target"
	_ "repro/internal/targets/hpl"
	_ "repro/internal/targets/imb"
	_ "repro/internal/targets/skeleton"
	"repro/internal/targets/susy"
)

// benchScale keeps each regeneration to a benchmark-friendly size.
var benchScale = experiments.Scale{
	Reps: 1, Iters: 60, Fig4Iters: 60, FixedRuns: 2,
	Fig6MaxN: 300, RunTimeout: 30 * time.Second, Budget: 5 * time.Second,
}

func benchTables(b *testing.B, run func(s experiments.Scale) []*experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, t := range run(benchScale) {
			t.Fprint(io.Discard)
		}
	}
}

// BenchmarkTable3Complexity regenerates Table III (program complexity).
func BenchmarkTable3Complexity(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.TableIII(s)}
	})
}

// BenchmarkFig4SearchStrategies regenerates Figure 4 (HPL coverage under the
// four search strategies).
func BenchmarkFig4SearchStrategies(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Fig4(s)}
	})
}

// BenchmarkFig6MatrixSize regenerates Figure 6 (HPL cost and coverage vs. N).
func BenchmarkFig6MatrixSize(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Fig6(s)}
	})
}

// BenchmarkBugHunt regenerates §VI-A (the four SUSY-HMC bugs).
func BenchmarkBugHunt(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Bugs(s)}
	})
}

// BenchmarkFig8InputCapping regenerates Figure 8 (caps vs. time/coverage).
func BenchmarkFig8InputCapping(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.Fig8(s)}
	})
}

// BenchmarkTable4TwoWay regenerates Table IV (one-way vs. two-way
// instrumentation).
func BenchmarkTable4TwoWay(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.TableIV(s)}
	})
}

// BenchmarkTable5Reduction regenerates Table V and Figure 9 (constraint set
// reduction and set-size distributions; the two share campaigns).
func BenchmarkTable5Reduction(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		t5, f9 := experiments.TableVFig9(s)
		return []*experiments.Table{t5, f9}
	})
}

// BenchmarkFig9SetSizes is an alias target for Figure 9 (same campaigns as
// Table V).
func BenchmarkFig9SetSizes(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		t5, f9 := experiments.TableVFig9(s)
		return []*experiments.Table{f9, t5}
	})
}

// BenchmarkTable6Framework regenerates Table VI (Fwk vs No_Fwk vs Random).
func BenchmarkTable6Framework(b *testing.B) {
	benchTables(b, func(s experiments.Scale) []*experiments.Table {
		return []*experiments.Table{experiments.TableVI(s)}
	})
}

// BenchmarkCampaignIteration measures the per-iteration cost of the engine
// itself on the skeleton program (launch + solve + setup).
func BenchmarkCampaignIteration(b *testing.B) {
	prog, _ := target.Lookup("skeleton")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.NewEngine(core.Config{
			Program: prog, Iterations: 10, Reduction: true,
			Framework: true, Seed: int64(i),
		}).Run()
	}
}

// BenchmarkSUSYTrajectory measures one fixed-input SUSY-HMC execution (the
// target-program side of the harness).
func BenchmarkSUSYTrajectory(b *testing.B) {
	prog, _ := target.Lookup("susy-hmc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.NewEngine(core.Config{
			Program: prog, Params: susy.FixAll(), Iterations: 3, Reduction: true,
			Framework: true, Seed: 9,
		}).Run()
	}
}

// benchEngine runs whole campaigns against one target and reports engine
// throughput as iterations per second per core — the benchmark-trajectory
// number BENCH_engine.json tracks run-over-run (cmd/compi-bench appends it
// and prints the delta vs the previous CI run). The profile=on/off pair is
// the disabled-profiler overhead pin: a nil profiler degrades every
// instrumentation point to a nil check, so the two sub-benchmarks must be
// indistinguishable within noise.
func benchEngine(b *testing.B, name string, params map[string]int64, profile bool) {
	prog, ok := target.Lookup(name)
	if !ok {
		b.Fatalf("target %q not registered", name)
	}
	b.ReportAllocs()
	iters := 0
	for i := 0; i < b.N; i++ {
		cfg := core.Config{
			Program: prog, Params: params, Iterations: 40,
			Reduction: true, Framework: true, Seed: 7,
			RunTimeout: 30 * time.Second,
		}
		if profile {
			cfg.Profiler = binstat.New()
		}
		res := core.NewEngine(cfg).Run()
		iters += len(res.Iterations)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(iters)/sec/float64(runtime.GOMAXPROCS(0)), "iters/s/core")
	}
}

// BenchmarkEngineHPL is the engine-throughput trajectory on HPL (the paper's
// main coverage target).
func BenchmarkEngineHPL(b *testing.B) {
	b.Run("profile=off", func(b *testing.B) { benchEngine(b, "hpl", nil, false) })
	b.Run("profile=on", func(b *testing.B) { benchEngine(b, "hpl", nil, true) })
}

// BenchmarkEngineSUSY is the engine-throughput trajectory on SUSY-HMC (the
// paper's bug-hunt target), seeded bugs fixed so every run completes its 40
// iterations.
func BenchmarkEngineSUSY(b *testing.B) {
	b.Run("profile=off", func(b *testing.B) { benchEngine(b, "susy-hmc", susy.FixAll(), false) })
	b.Run("profile=on", func(b *testing.B) { benchEngine(b, "susy-hmc", susy.FixAll(), true) })
}

// solverCall is one recorded engine→solver request.
type solverCall struct {
	preds []expr.Pred
	prev  map[expr.Var]int64
	opt   solver.Options
}

// recordingSolver captures the solving workload of a campaign so it can be
// replayed against fresh and warmed services.
type recordingSolver struct {
	svc   core.SolverService
	calls []solverCall
}

func (r *recordingSolver) SolveIncremental(preds []expr.Pred, prev map[expr.Var]int64, opt solver.Options) (solver.Result, bool) {
	p := make(map[expr.Var]int64, len(prev))
	for v, x := range prev { // the engine mutates prev between calls
		p[v] = x
	}
	// Both slices are only valid during the call (the engine reuses its
	// constraint scratch buffer — see core.SolverService).
	r.calls = append(r.calls, solverCall{preds: append([]expr.Pred(nil), preds...), prev: p, opt: opt})
	return r.svc.SolveIncremental(preds, prev, opt)
}

func (r *recordingSolver) Stats() solver.Stats { return r.svc.Stats() }

// BenchmarkSolverCache measures the solver service on a recorded constraint
// corpus: "cold" replays the workload through an empty service (every call a
// live solve), "warm" through a pre-warmed one (the sharded-campaign steady
// state). The warm case also reports the cache hit rate per call.
func BenchmarkSolverCache(b *testing.B) {
	prog, _ := target.Lookup("skeleton")
	rec := &recordingSolver{svc: solver.NewService(solver.ServiceConfig{})}
	core.NewEngine(core.Config{
		Program: prog, Iterations: 80, Reduction: true,
		Framework: true, Seed: 5, Solver: rec,
	}).Run()
	if len(rec.calls) == 0 {
		b.Fatal("recorded no solver calls")
	}
	replay := func(svc *solver.Service) {
		for _, c := range rec.calls {
			svc.SolveIncremental(c.preds, c.prev, c.opt)
		}
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			replay(solver.NewService(solver.ServiceConfig{}))
		}
	})
	b.Run("warm", func(b *testing.B) {
		svc := solver.NewService(solver.ServiceConfig{})
		replay(svc)
		before := svc.Stats()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			replay(svc)
		}
		b.StopTimer()
		d := svc.Stats().Delta(before)
		b.ReportMetric(d.HitRate(), "hit/call")
	})
}

// BenchmarkWarmResume measures a second campaign run against a campaign
// store's persisted proven-UNSAT cache: "cold" starts from an empty solver
// service, "warm" imports the cache a first run saved. The warm runs must
// answer part of the workload from the cache (reported as unsathit/run)
// while producing exactly the cold trajectory — the cache is invisible in
// the results, visible only in the work skipped.
func BenchmarkWarmResume(b *testing.B) {
	prog, _ := target.Lookup("skeleton")
	mkCfg := func(svc core.SolverService) core.Config {
		return core.Config{
			Program: prog, Iterations: 80, Reduction: true,
			Framework: true, Seed: 5, Solver: svc,
		}
	}
	stats := func(res core.Result) []core.IterationStat {
		its := append([]core.IterationStat(nil), res.Iterations...)
		for i := range its {
			its[i].Elapsed, its[i].RunTime = 0, 0
		}
		return its
	}
	ref := core.NewEngine(mkCfg(solver.NewService(solver.ServiceConfig{}))).Run()

	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	seedSvc := solver.NewService(solver.ServiceConfig{})
	core.NewEngine(mkCfg(seedSvc)).Run()
	if err := st.SaveSolverCache(seedSvc); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.NewEngine(mkCfg(solver.NewService(solver.ServiceConfig{}))).Run()
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		var hits int64
		for i := 0; i < b.N; i++ {
			svc := solver.NewService(solver.ServiceConfig{})
			if n, err := st.LoadSolverCacheInto(svc); err != nil || n == 0 {
				b.Fatalf("warm import: n=%d err=%v", n, err)
			}
			res := core.NewEngine(mkCfg(svc)).Run()
			d := svc.Stats()
			if d.UnsatHits == 0 {
				b.Fatal("warm run never hit the imported UNSAT cache")
			}
			hits += d.UnsatHits
			if !reflect.DeepEqual(res.Coverage.Branches(), ref.Coverage.Branches()) ||
				!reflect.DeepEqual(stats(res), stats(ref)) {
				b.Fatal("warm trajectory diverged from the cache-free run")
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "unsathit/run")
	})
}

// benchQueryStore builds a store with synthetic indexed campaigns spread
// over a handful of targets, a third of them carrying a deadlock error.
func benchQueryStore(b *testing.B, campaigns int) *store.Store {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < campaigns; i++ {
		var bits []conc.BranchBit
		for j := 0; j < 200+i; j++ {
			bits = append(bits, conc.BranchBit(j))
		}
		snap := &core.Snapshot{
			Version: core.SnapshotVersion, Program: fmt.Sprintf("target-%d", i%6),
			Iters: 100 + i, Covered: bits, Funcs: []string{"main", "compute"},
		}
		if i%3 == 0 {
			snap.Errors = []core.ErrorRecord{{
				Status: mpi.StatusDeadlock,
				Msg:    fmt.Sprintf("deadlock: wait-for cycle 0->%d->0", i%4+1),
			}}
		}
		name := fmt.Sprintf("camp-%03d", i)
		if err := st.SaveCampaign(name, snap); err != nil {
			b.Fatal(err)
		}
		if err := st.MarkExplored(fmt.Sprintf("key-%03d", i),
			store.SetupRecord{Campaign: name, Iters: snap.Iters, Batch: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := st.Reindex(); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStoreQuery measures the `compi report` read path: load and verify
// the campaign index, answer the which-setups-found-error-X query and the
// coverage-by-target rollup — all without touching a snapshot.
func BenchmarkStoreQuery(b *testing.B) {
	st := benchQueryStore(b, 120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries, err := st.Index()
		if err != nil {
			b.Fatal(err)
		}
		if hits := store.SetupsWithError(entries, "wait-for cycle"); len(hits) == 0 {
			b.Fatal("error query found nothing")
		}
		if ts := store.ByTarget(entries); len(ts) != 6 {
			b.Fatalf("target rollup found %d targets", len(ts))
		}
	}
}

// BenchmarkMinimize measures a corpus-minimization pass over a store of
// campaigns whose per-setup coverage sets are nested prefixes (the heavy-
// subsumption shape). The first iteration rewrites snapshots; steady state
// is snapshot loading plus the greedy set cover.
func BenchmarkMinimize(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < 12; c++ {
		snap := &core.Snapshot{
			Version: core.SnapshotVersion, Program: "bench", Iters: 50,
			Corpus:    map[string]map[string]int64{},
			CorpusCov: map[string][]conc.BranchBit{},
		}
		for s := 0; s < 24; s++ {
			key := fmt.Sprintf("%d/%d", 4+s%4, s)
			snap.Corpus[key] = map[string]int64{"x": int64(s)}
			var bits []conc.BranchBit
			for j := 0; j <= s*8; j++ {
				bits = append(bits, conc.BranchBit(c*1000+j))
			}
			snap.CorpusCov[key] = bits
		}
		if err := st.SaveCampaign(fmt.Sprintf("camp-%02d", c), snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Minimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetMergeDelta measures the fleet's streaming-merge encoding on
// a shard that has already covered a large corpus and finds a handful of new
// branches per iteration: "delta" encodes the merge frame the worker actually
// sends (O(new branches)), "full" what a naive design would send (the whole
// corpus every iteration). Both report bytes/frame; the gap is the point.
func BenchmarkFleetMergeDelta(b *testing.B) {
	const corpus, fresh = 20_000, 4
	tr := coverage.New()
	tr.StartJournal()
	for i := 0; i < corpus; i++ {
		tr.AddBranch(conc.BranchBit(i))
	}
	tr.DrainDelta() // corpus already streamed in earlier frames

	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		var total int64
		for i := 0; i < b.N; i++ {
			for j := 0; j < fresh; j++ {
				tr.AddBranch(conc.BranchBit(corpus + (i*fresh+j)%corpus))
			}
			var frame bytes.Buffer
			err := fleet.WriteFrame(&frame, fleet.Frame{Type: fleet.FrameMerge, Merge: &fleet.Merge{
				Lease: "shard0.g1", Iters: i + 1, Delta: tr.DrainDelta(),
			}})
			if err != nil {
				b.Fatal(err)
			}
			total += int64(frame.Len())
		}
		b.ReportMetric(float64(total)/float64(b.N), "bytes/frame")
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		var total int64
		for i := 0; i < b.N; i++ {
			raw, err := json.Marshal(tr.Branches())
			if err != nil {
				b.Fatal(err)
			}
			total += int64(len(raw))
		}
		b.ReportMetric(float64(total)/float64(b.N), "bytes/frame")
	})
}

// BenchmarkSchedSpeedup measures the scheduler's parallel speedup on four
// identical skeleton campaigns: the serial case runs them on one worker,
// the parallel case on four. The ratio of the two is the machine's effective
// campaign-level parallelism.
func BenchmarkSchedSpeedup(b *testing.B) {
	specs := func() []sched.Spec {
		var out []sched.Spec
		for _, seed := range []int64{1, 2, 3, 4} {
			out = append(out, sched.Spec{Campaign: spec.Campaign{
				Target:     "skeleton",
				Seed:       seed,
				Iterations: 60,
				Reduction:  true,
				Framework:  true,
				RunTimeout: 5 * time.Second,
			}})
		}
		return out
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"j4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := sched.Run(specs(), sched.Options{Workers: bc.workers})
				for _, c := range rep.Campaigns {
					if c.Err != nil {
						b.Fatal(c.Err)
					}
				}
			}
		})
	}
}
